"""Cache Coherence checker: CET/MET, epoch rules, scrubbing (4.3)."""


from repro.common.crc import hash_block
from repro.common.events import Scheduler
from repro.common.stats import StatsRegistry
from repro.common.types import WORDS_PER_BLOCK, EpochType
from repro.config import DVMCConfig, SystemConfig
from repro.dvmc.coherence_checker import CoherenceChecker
from repro.dvmc.framework import ViolationLog
from repro.memory.memory import MainMemory


class ManualClock:
    """Directly settable logical time for unit tests."""

    def __init__(self, num_nodes):
        self.times = [0] * num_nodes

    def now(self, node):
        return self.times[node]

    def set_all(self, value):
        self.times = [value] * len(self.times)


def make_checker(num_nodes=2, timestamp_bits=16):
    sched = Scheduler()
    stats = StatsRegistry()
    log = ViolationLog()
    clock = ManualClock(num_nodes)
    config = SystemConfig(
        num_nodes=num_nodes,
        dvmc=DVMCConfig(timestamp_bits=timestamp_bits),
    )
    memories = [MainMemory(stats) for _ in range(num_nodes)]
    sent = []

    def send(msg):
        msg.no_recycle = True  # the test list keeps the record alive
        sent.append(msg)
        # Loop informs straight back into the MET (zero-latency net).
        checker.handle_message(msg)

    checker = CoherenceChecker(
        sched, stats, config, clock, lambda addr: 0, memories, send, log
    )
    return checker, log, clock, sent, memories


BLOCK = 0x1000


def data(value=0):
    return [value] * WORDS_PER_BLOCK


class TestCETLifecycle:
    def test_begin_data_end_sends_inform(self):
        checker, log, clock, sent, _ = make_checker()
        checker.home_request(0, BLOCK)
        checker.epoch_begin(1, BLOCK, EpochType.READ_ONLY, data(0))
        clock.set_all(5)
        checker.epoch_end(1, BLOCK, data(0))
        assert len(sent) == 1
        m = sent[0]
        assert m.etype == 0  # READ_ONLY code
        assert m.t_begin == 0 and m.t_end == 5
        assert m.h_begin == m.h_end == hash_block(data(0))

    def test_data_ready_bit(self):
        """An epoch can begin before its data arrives (snooping)."""
        checker, log, clock, sent, _ = make_checker()
        checker.home_request(0, BLOCK)
        checker.epoch_begin(1, BLOCK, EpochType.READ_ONLY, None)
        clock.set_all(4)
        checker.epoch_data(1, BLOCK, data(0))
        clock.set_all(9)
        checker.epoch_end(1, BLOCK, data(0))
        assert sent[0].t_begin == 0
        assert sent[0].h_begin == hash_block(data(0))

    def test_degenerate_epoch_ends_before_data(self):
        checker, log, clock, sent, _ = make_checker()
        checker.home_request(0, BLOCK)
        checker.epoch_begin(1, BLOCK, EpochType.READ_ONLY, None)
        checker.epoch_end(1, BLOCK, None)  # killed before data arrived
        assert not sent  # inform waits for the hash
        checker.epoch_data(1, BLOCK, data(0))
        assert len(sent) == 1

    def test_access_checks(self):
        checker, log, clock, _, _ = make_checker()
        checker.epoch_begin(1, BLOCK, EpochType.READ_ONLY, data())
        checker.check_access(1, BLOCK + 4, is_store=False)
        assert not log.reports
        checker.check_access(1, BLOCK + 4, is_store=True)
        assert log.reports[-1].kind == "store-outside-rw-epoch"
        checker.check_access(1, 0x9999000, is_store=False)
        assert log.reports[-1].kind == "access-without-epoch"

    def test_store_in_rw_epoch_is_fine(self):
        checker, log, _, _, _ = make_checker()
        checker.epoch_begin(1, BLOCK, EpochType.READ_WRITE, data())
        checker.check_access(1, BLOCK, is_store=True)
        assert not log.reports

    def test_double_end_flagged(self):
        checker, log, _, _, _ = make_checker()
        checker.epoch_begin(1, BLOCK, EpochType.READ_ONLY, data())
        checker.epoch_end(1, BLOCK, data())
        checker.epoch_end(1, BLOCK, data())
        assert log.reports[-1].kind == "end-without-epoch"


class TestMETRules:
    def _rw_epoch(self, checker, clock, node, begin, end, value_in, value_out):
        clock.set_all(begin)
        checker.epoch_begin(node, BLOCK, EpochType.READ_WRITE, data(value_in))
        clock.set_all(end)
        checker.epoch_end(node, BLOCK, data(value_out))

    def test_clean_rw_then_ro(self):
        checker, log, clock, _, _ = make_checker()
        checker.home_request(0, BLOCK)
        self._rw_epoch(checker, clock, 1, 1, 5, 0, 7)
        clock.set_all(6)
        checker.epoch_begin(0, BLOCK, EpochType.READ_ONLY, data(7))
        clock.set_all(9)
        checker.epoch_end(0, BLOCK, data(7))
        checker.flush()
        assert not log.reports

    def test_rule2_rw_overlapping_rw(self):
        checker, log, clock, _, _ = make_checker()
        checker.home_request(0, BLOCK)
        self._rw_epoch(checker, clock, 1, 1, 10, 0, 7)
        # Second RW epoch begins at 4 < 10: illegal overlap.
        clock.set_all(4)
        checker.epoch_begin(0, BLOCK, EpochType.READ_WRITE, data(7))
        clock.set_all(6)
        checker.epoch_end(0, BLOCK, data(8))
        checker.flush()
        assert any(r.kind == "epoch-overlap" for r in log.reports)

    def test_rule2_ro_overlapping_rw(self):
        checker, log, clock, _, _ = make_checker()
        checker.home_request(0, BLOCK)
        self._rw_epoch(checker, clock, 1, 1, 10, 0, 7)
        clock.set_all(5)  # inside the RW epoch
        checker.epoch_begin(0, BLOCK, EpochType.READ_ONLY, data(7))
        clock.set_all(6)
        checker.epoch_end(0, BLOCK, data(7))
        checker.flush()
        assert any(r.kind == "epoch-overlap" for r in log.reports)

    def test_concurrent_ro_epochs_are_legal(self):
        checker, log, clock, _, _ = make_checker()
        checker.home_request(0, BLOCK)
        clock.set_all(1)
        checker.epoch_begin(0, BLOCK, EpochType.READ_ONLY, data(0))
        checker.epoch_begin(1, BLOCK, EpochType.READ_ONLY, data(0))
        clock.set_all(8)
        checker.epoch_end(0, BLOCK, data(0))
        checker.epoch_end(1, BLOCK, data(0))
        checker.flush()
        assert not log.reports

    def test_rule3_data_propagation(self):
        """An epoch beginning with data that differs from the last RW
        epoch's end is corruption in flight or in memory."""
        checker, log, clock, _, _ = make_checker()
        checker.home_request(0, BLOCK)
        self._rw_epoch(checker, clock, 1, 1, 5, 0, 7)
        clock.set_all(6)
        checker.epoch_begin(0, BLOCK, EpochType.READ_ONLY, data(999))
        clock.set_all(9)
        checker.epoch_end(0, BLOCK, data(999))
        checker.flush()
        assert any(r.kind == "data-propagation" for r in log.reports)

    def test_ro_epoch_data_must_not_change(self):
        checker, log, clock, _, _ = make_checker()
        checker.home_request(0, BLOCK)
        clock.set_all(1)
        checker.epoch_begin(0, BLOCK, EpochType.READ_ONLY, data(0))
        clock.set_all(5)
        checker.epoch_end(0, BLOCK, data(123))  # corrupted in the cache
        checker.flush()
        assert any(r.kind == "ro-epoch-data-changed" for r in log.reports)

    def test_met_entry_created_from_memory(self):
        checker, log, clock, _, memories = make_checker()
        memories[0].write_block(BLOCK, data(0x42))
        clock.set_all(3)
        checker.home_request(0, BLOCK)
        clock.set_all(4)
        checker.epoch_begin(1, BLOCK, EpochType.READ_ONLY, data(0x42))
        clock.set_all(6)
        checker.epoch_end(1, BLOCK, data(0x42))
        checker.flush()
        assert not log.reports  # initial hash came from memory contents


class TestPriorityQueue:
    def test_out_of_order_arrival_is_resorted(self):
        """Informs arriving out of begin order within the slack window
        are processed in begin order."""
        checker, log, clock, sent, _ = make_checker()
        checker.home_request(0, BLOCK)
        # Build two epochs; deliver their informs out of order manually.
        clock.set_all(1)
        checker.epoch_begin(1, BLOCK, EpochType.READ_WRITE, data(0))
        clock.set_all(3)
        checker.epoch_end(1, BLOCK, data(5))
        clock.set_all(4)
        checker.epoch_begin(0, BLOCK, EpochType.READ_ONLY, data(5))
        clock.set_all(6)
        checker.epoch_end(0, BLOCK, data(5))
        checker.flush()
        assert not log.reports


class TestScrubbing:
    def test_long_epoch_triggers_open_inform(self):
        """With a tiny timestamp width, an epoch outliving the wrap
        horizon sends Inform-Open-Epoch and later Inform-Closed-Epoch."""
        checker, log, clock, sent, _ = make_checker(timestamp_bits=6)
        checker.home_request(0, BLOCK)
        clock.set_all(1)
        checker.epoch_begin(1, BLOCK, EpochType.READ_WRITE, data(0))
        clock.set_all(1 + (1 << 6))  # beyond the wrap horizon
        checker._scrub_check(1)
        kinds = [m.kind.value for m in sent]
        assert "InformOpenEpoch" in kinds
        clock.set_all(2 + (1 << 6))
        checker.epoch_end(1, BLOCK, data(9))
        kinds = [m.kind.value for m in sent]
        assert "InformClosedEpoch" in kinds
        checker.flush()
        assert not log.reports

    def test_open_rw_epoch_blocks_others(self):
        checker, log, clock, sent, _ = make_checker(timestamp_bits=6)
        checker.home_request(0, BLOCK)
        clock.set_all(1)
        checker.epoch_begin(1, BLOCK, EpochType.READ_WRITE, data(0))
        clock.set_all(1 + (1 << 6))
        checker._scrub_check(1)  # node 1 now has an *open* RW at the MET
        # Another node claims an epoch while the RW is open: violation.
        clock.set_all(2 + (1 << 6))
        checker.epoch_begin(0, BLOCK, EpochType.READ_ONLY, data(0))
        clock.set_all(3 + (1 << 6))
        checker.epoch_end(0, BLOCK, data(0))
        checker.flush()
        assert any(r.kind == "epoch-overlap-open" for r in log.reports)

    def test_short_epochs_never_scrub(self):
        checker, _, clock, sent, _ = make_checker()
        checker.home_request(0, BLOCK)
        checker.epoch_begin(1, BLOCK, EpochType.READ_ONLY, data(0))
        checker._scrub_check(1)
        assert all(m.kind.value != "InformOpenEpoch" for m in sent)
