"""Streaming verification plane: OpLog substrate and eager/batch identity."""

import dataclasses

import pytest

from repro.common.events import Scheduler
from repro.common.stats import StatsRegistry
from repro.common.types import MembarMask, OpType
from repro.config import SystemConfig
from repro.consistency.models import ConsistencyModel
from repro.consistency.tables import table_for
from repro.dvmc.framework import ViolationLog
from repro.dvmc.reordering import AllowableReorderingChecker
from repro.dvmc.streaming import LOG_RECORDS, RECORD_WIDTH, OpLog
from repro.parallel import RunSpec, execute_run_spec


class TestOpLog:
    def test_starts_empty_with_preallocated_buffer(self):
        log = OpLog()
        assert len(log) == 0
        assert not log.full
        assert len(log.buf) == LOG_RECORDS * RECORD_WIDTH

    def test_custom_capacity_and_clear(self):
        log = OpLog(records=2)
        log.length = RECORD_WIDTH  # one record appended by an owner
        assert len(log) == 1
        assert not log.full
        log.length = 2 * RECORD_WIDTH
        assert log.full
        log.clear()
        assert len(log) == 0 and not log.full


class TestARCheckerLogModes:
    """The AR checker must report identically with and without a log."""

    def _checker(self, attach):
        sched = Scheduler()
        violations = ViolationLog()
        table = table_for(ConsistencyModel.TSO)
        checker = AllowableReorderingChecker(
            node=0,
            scheduler=sched,
            stats=StatsRegistry(),
            config=SystemConfig.protected(),
            table=lambda: table,
            violations=violations,
        )
        if attach:
            checker.attach_log(OpLog(records=4))  # tiny: forces mid-run drains
        return sched, checker, violations

    def _drive(self, sched, checker):
        """Stores performed out of program order under TSO (a violation)."""
        for cycle, (op, seq) in enumerate(
            [
                (OpType.STORE, 1),
                (OpType.LOAD, 2),
                (OpType.STORE, 3),
                (OpType.LOAD, 4),
                (OpType.STORE, 5),
            ]
        ):
            sched.now = cycle
            checker.committed(op, seq, cycle)
        # Perform youngest-first: under TSO store->store order this
        # must flag reordering violations in both modes.
        for op, seq in [
            (OpType.STORE, 5),
            (OpType.LOAD, 4),
            (OpType.STORE, 3),
            (OpType.LOAD, 2),
            (OpType.STORE, 1),
        ]:
            sched.now += 1
            checker.performed(op, seq, MembarMask.NONE)
        checker.check_outstanding()

    def test_log_and_eager_agree(self):
        sched_e, eager, violations_e = self._checker(attach=False)
        self._drive(sched_e, eager)
        sched_b, batch, violations_b = self._checker(attach=True)
        self._drive(sched_b, batch)
        def key(r):
            return (r.cycle, r.checker, r.node, r.kind, r.detail)

        assert sorted(map(key, violations_e.reports)) == sorted(
            map(key, violations_b.reports)
        )

    def test_outstanding_count_drains_log(self):
        _sched, checker, _violations = self._checker(attach=True)
        checker.committed(OpType.STORE, seq=1, cycle=0)
        assert checker.outstanding_count == 1


def _run_metrics(monkeypatch, eager: bool, workload: str):
    if eager:
        monkeypatch.setenv("REPRO_EAGER_CHECK", "1")
    else:
        monkeypatch.delenv("REPRO_EAGER_CHECK", raising=False)
    spec = RunSpec(
        SystemConfig.protected().with_seed(11), workload, ops=40
    )
    return execute_run_spec(spec)


class TestEagerBatchIdentity:
    """REPRO_EAGER_CHECK=1 and the default streaming plane must agree
    bit-for-bit: cycles, violation count, events, and every counter."""

    @pytest.mark.parametrize("workload", ["oltp", "barnes"])
    def test_full_run_identical(self, monkeypatch, workload):
        batch = _run_metrics(monkeypatch, eager=False, workload=workload)
        eager = _run_metrics(monkeypatch, eager=True, workload=workload)
        assert dataclasses.asdict(batch) == dataclasses.asdict(eager)

    def test_eager_env_disables_log(self, monkeypatch):
        from repro.system.builder import build_system

        monkeypatch.setenv("REPRO_EAGER_CHECK", "1")
        system = build_system(SystemConfig.protected().with_seed(1))
        assert all(ar._log is None for ar in system.dvmc.ar_checkers)
        monkeypatch.delenv("REPRO_EAGER_CHECK", raising=False)
        system = build_system(SystemConfig.protected().with_seed(1))
        assert all(ar._log is not None for ar in system.dvmc.ar_checkers)
