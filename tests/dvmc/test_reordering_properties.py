"""Property-based tests: the AR checker accepts exactly the orders the
ordering table allows.

Strategy: generate a random program (op types + membar masks), derive a
random *legal* perform order by repeatedly picking any operation whose
table-mandated predecessors have all performed, and feed it to the
checker — it must stay silent.  Then force an illegal inversion — it
must fire.
"""

from hypothesis import given, settings, strategies as st

from repro.common.events import Scheduler
from repro.common.stats import StatsRegistry
from repro.common.types import MembarMask, OpType
from repro.config import SystemConfig
from repro.consistency.tables import TABLES
from repro.consistency.models import ConsistencyModel
from repro.dvmc.framework import ViolationLog
from repro.dvmc.reordering import AllowableReorderingChecker

_ACCESS = (OpType.LOAD, OpType.STORE)


def _ordered(table, first_op, second_op):
    """Is there a constraint between two concrete ops (type, mask)?"""
    first_type, first_mask = first_op
    second_type, second_mask = second_op
    return table.ordered(
        first_type,
        second_type,
        first_mask=first_mask,
        second_mask=second_mask,
    )


def _legal_perform_order(table, program, rng_indices):
    """Greedy topological order consistent with the table."""
    remaining = list(range(len(program)))
    performed = []
    while remaining:
        ready = [
            i
            for i in remaining
            if not any(
                j < i and _ordered(table, program[j], program[i])
                for j in remaining
            )
        ]
        pick = ready[rng_indices.draw(st.integers(0, len(ready) - 1))]
        performed.append(pick)
        remaining.remove(pick)
    return performed


def _op_strategy():
    mask = st.sampled_from(
        [
            MembarMask.LOADLOAD,
            MembarMask.STORESTORE,
            MembarMask.LOADLOAD | MembarMask.STORELOAD,
            MembarMask.ALL,
        ]
    )
    access = st.tuples(st.sampled_from(_ACCESS), st.just(MembarMask.ALL))
    membar = st.tuples(st.just(OpType.MEMBAR), mask)
    return st.one_of(access, access, access, membar)  # membars ~25%


def make_checker(model):
    sched = Scheduler()
    log = ViolationLog()
    checker = AllowableReorderingChecker(
        0, sched, StatsRegistry(), SystemConfig(), lambda: TABLES[model], log
    )
    return checker, log


class TestLegalOrdersAccepted:
    @given(
        st.sampled_from(list(ConsistencyModel)),
        st.lists(_op_strategy(), min_size=1, max_size=10),
        st.data(),
    )
    @settings(max_examples=120, deadline=None)
    def test_never_flags_legal_order(self, model, program, data):
        table = TABLES[model]
        order = _legal_perform_order(table, program, data)
        checker, log = make_checker(model)
        for seq in order:
            op_type, mask = program[seq]
            checker.performed(op_type, seq, mask)
        assert not log.reports, (model, program, order, log.reports)


class TestIllegalInversionsFlagged:
    @given(
        st.sampled_from(list(ConsistencyModel)),
        st.lists(_op_strategy(), min_size=2, max_size=8),
        st.data(),
    )
    @settings(max_examples=120, deadline=None)
    def test_flags_direct_inversion(self, model, program, data):
        """Pick any constrained pair (i < j) and perform j before i:
        the checker must flag it by the time i performs."""
        table = TABLES[model]
        pairs = [
            (i, j)
            for i in range(len(program))
            for j in range(i + 1, len(program))
            if _ordered(table, program[i], program[j])
        ]
        if not pairs:
            return  # nothing ordered in this program (e.g. RMO, no membars)
        i, j = pairs[data.draw(st.integers(0, len(pairs) - 1))]
        checker, log = make_checker(model)
        checker.performed(program[j][0], j, program[j][1])
        checker.performed(program[i][0], i, program[i][1])
        assert log.reports, (model, program, i, j)
