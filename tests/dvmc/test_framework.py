"""DVMC framework composition and violation log."""

from repro.common.types import ViolationReport
from repro.config import DVMCConfig
from repro.dvmc.framework import DVMC, ViolationLog


def report(checker="UO", cycle=5):
    return ViolationReport(checker, cycle, 0, "kind", "detail")


class TestViolationLog:
    def test_collects_and_orders(self):
        log = ViolationLog()
        log(report("UO", 5))
        log(report("CC", 9))
        assert len(log) == 2
        assert log.first.cycle == 5

    def test_by_checker(self):
        log = ViolationLog()
        log(report("UO"))
        log(report("CC"))
        assert len(log.by_checker("UO")) == 1

    def test_callback_fires(self):
        seen = []
        log = ViolationLog(callback=seen.append)
        log(report())
        assert len(seen) == 1

    def test_clear(self):
        log = ViolationLog()
        log(report())
        log.clear()
        assert log.first is None


class TestDVMCConfigPresets:
    def test_disabled(self):
        c = DVMCConfig.disabled()
        assert not c.any_enabled

    def test_coherence_only(self):
        c = DVMCConfig.coherence_only()
        assert c.enable_coherence
        assert not c.enable_uniprocessor and not c.enable_reordering

    def test_uniprocessor_only(self):
        c = DVMCConfig.uniprocessor_only()
        assert c.enable_uniprocessor
        assert not c.enable_coherence and not c.enable_reordering

    def test_full_default(self):
        c = DVMCConfig()
        assert c.any_enabled
        assert c.enable_uniprocessor and c.enable_reordering and c.enable_coherence


class TestDVMCContainer:
    def test_enabled_reflects_members(self):
        dvmc = DVMC()
        assert not dvmc.enabled
        dvmc.ar_checkers.append(object())
        assert dvmc.enabled

    def test_finalize_with_nothing(self):
        DVMC().finalize()  # must not raise
