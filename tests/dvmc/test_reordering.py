"""Allowable Reordering checker unit tests (paper Section 4.2)."""


from repro.common.events import Scheduler
from repro.common.stats import StatsRegistry
from repro.common.types import MembarMask, OpType
from repro.config import SystemConfig
from repro.consistency.tables import PSO_TABLE, RMO_TABLE, SC_TABLE, TSO_TABLE
from repro.dvmc.framework import ViolationLog
from repro.dvmc.reordering import AllowableReorderingChecker

L, S, SB, MB = OpType.LOAD, OpType.STORE, OpType.STBAR, OpType.MEMBAR
ALL = MembarMask.ALL


def make_checker(table):
    sched = Scheduler()
    log = ViolationLog()
    checker = AllowableReorderingChecker(
        0, sched, StatsRegistry(), SystemConfig(), lambda: table, log
    )
    return checker, log, sched


class TestTSOChecks:
    def test_in_order_performs_are_clean(self):
        checker, log, _ = make_checker(TSO_TABLE)
        for seq, op in enumerate([L, L, S, S]):
            checker.performed(op, seq, ALL)
        assert not log.reports

    def test_store_load_reorder_is_legal(self):
        """TSO's write-buffer relaxation: a younger load performing
        before an older store is allowed."""
        checker, log, _ = make_checker(TSO_TABLE)
        checker.performed(L, 1, ALL)  # load seq 1 performs first
        checker.performed(S, 0, ALL)  # older store performs later
        assert not log.reports

    def test_load_load_reorder_is_violation(self):
        checker, log, _ = make_checker(TSO_TABLE)
        checker.performed(L, 1, ALL)
        checker.performed(L, 0, ALL)
        assert len(log.reports) == 1
        assert log.reports[0].kind == "illegal-reordering"

    def test_store_store_reorder_is_violation(self):
        checker, log, _ = make_checker(TSO_TABLE)
        checker.performed(S, 1, ALL)
        checker.performed(S, 0, ALL)
        assert len(log.reports) == 1

    def test_load_store_reorder_is_violation(self):
        """A store performing before an older load breaks Load->Store."""
        checker, log, _ = make_checker(TSO_TABLE)
        checker.performed(S, 1, ALL)
        checker.performed(L, 0, ALL)
        assert len(log.reports) == 1


class TestSCChecks:
    def test_any_reorder_is_violation(self):
        for first, second in ((L, L), (L, S), (S, L), (S, S)):
            checker, log, _ = make_checker(SC_TABLE)
            checker.performed(second, 1, ALL)
            checker.performed(first, 0, ALL)
            assert log.reports, f"{first}->{second} reorder undetected"


class TestPSOChecks:
    def test_store_store_reorder_legal(self):
        checker, log, _ = make_checker(PSO_TABLE)
        checker.performed(S, 1, ALL)
        checker.performed(S, 0, ALL)
        assert not log.reports

    def test_stbar_restores_store_order(self):
        """Store A < Stbar < Store B: B performing before the Stbar is a
        violation (Stbar->Store constraint)."""
        checker, log, _ = make_checker(PSO_TABLE)
        checker.performed(S, 0, ALL)  # A
        checker.performed(S, 2, ALL)  # B jumps the barrier
        checker.performed(SB, 1, ALL)  # the Stbar performs last
        assert log.reports  # Stbar seq 1 after younger store seq 2

    def test_store_must_precede_stbar(self):
        checker, log, _ = make_checker(PSO_TABLE)
        checker.performed(SB, 1, ALL)
        checker.performed(S, 0, ALL)  # store older than stbar, performs late
        assert log.reports


class TestRMOChecks:
    def test_everything_reorders_freely(self):
        checker, log, _ = make_checker(RMO_TABLE)
        checker.performed(S, 3, ALL)
        checker.performed(L, 2, ALL)
        checker.performed(S, 0, ALL)
        checker.performed(L, 1, ALL)
        assert not log.reports

    def test_membar_mask_enforced(self):
        """Membar #LL orders loads only: a load hopping it violates; a
        store hopping it does not."""
        checker, log, _ = make_checker(RMO_TABLE)
        checker.performed(MB, 1, MembarMask.LOADLOAD)
        checker.performed(S, 0, ALL)  # store->membar with #LL: unordered
        assert not log.reports
        checker.performed(L, 0, ALL)  # load->membar with #LL: ordered!
        assert log.reports

    def test_membar_vs_younger_accesses(self):
        """Membar #SS seq 1 performing after younger store seq 2
        performed is a violation (Membar->Store)."""
        checker, log, _ = make_checker(RMO_TABLE)
        checker.performed(S, 2, ALL)
        checker.performed(MB, 1, MembarMask.STORESTORE)
        assert log.reports

    def test_atomic_checked_as_both(self):
        """Under RMO with a #LL membar: an atomic (load half) hopping the
        membar is caught."""
        checker, log, _ = make_checker(RMO_TABLE)
        checker.performed(MB, 1, MembarMask.LOADLOAD)
        checker.performed(OpType.ATOMIC, 0, ALL)
        assert log.reports


class TestLostOperations:
    def test_outstanding_op_detected(self):
        checker, log, sched = make_checker(TSO_TABLE)
        checker.committed(S, 0, cycle=0)
        interval = SystemConfig().dvmc.membar_injection_interval
        sched.after(3 * interval, lambda: None)
        sched.run()  # periodic injected-membar checks fire
        assert any(r.kind == "lost-operation" for r in log.reports)

    def test_performed_op_not_reported(self):
        checker, log, sched = make_checker(TSO_TABLE)
        checker.committed(S, 0, cycle=0)
        checker.performed(S, 0, ALL)
        interval = SystemConfig().dvmc.membar_injection_interval
        sched.after(3 * interval, lambda: None)
        sched.run()
        assert not log.reports

    def test_recent_commits_not_flagged(self):
        checker, log, _ = make_checker(TSO_TABLE)
        checker.committed(S, 0, cycle=0)
        checker.check_outstanding()  # immediately: too young to flag
        assert not log.reports

    def test_outstanding_count(self):
        checker, _, _ = make_checker(TSO_TABLE)
        checker.committed(L, 0, 0)
        checker.committed(S, 1, 0)
        assert checker.outstanding_count == 2
        checker.performed(L, 0, ALL)
        assert checker.outstanding_count == 1

    def test_barriers_not_tracked_as_outstanding(self):
        checker, _, _ = make_checker(TSO_TABLE)
        checker.committed(MB, 0, 0)
        assert checker.outstanding_count == 0


class TestDynamicTableSwitch:
    def test_checker_follows_active_table(self):
        """Runtime model switching: the same event stream is legal under
        PSO but illegal under TSO."""
        active = {"table": PSO_TABLE}
        sched = Scheduler()
        log = ViolationLog()
        checker = AllowableReorderingChecker(
            0, sched, StatsRegistry(), SystemConfig(), lambda: active["table"], log
        )
        checker.performed(S, 1, ALL)
        checker.performed(S, 0, ALL)  # PSO: fine
        assert not log.reports
        active["table"] = TSO_TABLE
        checker.performed(S, 3, ALL)
        checker.performed(S, 2, ALL)  # TSO: violation
        assert log.reports
