"""Uniprocessor Ordering checker and Verification Cache (Section 4.1)."""


from repro.common.events import Scheduler
from repro.common.stats import StatsRegistry
from repro.config import DVMCConfig, SystemConfig
from repro.dvmc.framework import ViolationLog
from repro.dvmc.uniprocessor import UniprocessorOrderingChecker


class FakeController:
    """Answers replay reads from a dict (stands in for the L1)."""

    def __init__(self):
        self.memory = {}
        self.replay_reads = 0

    def replay_load(self, addr, on_done):
        self.replay_reads += 1
        on_done(self.memory.get(addr & ~3, 0))


def make_checker(rmo=False, vc_entries=8):
    sched = Scheduler()
    log = ViolationLog()
    controller = FakeController()
    config = SystemConfig(
        dvmc=DVMCConfig(verification_cache_entries=vc_entries)
    )
    checker = UniprocessorOrderingChecker(
        0, sched, StatsRegistry(), config, controller, log, rmo_mode=rmo
    )
    return checker, log, controller, sched


class TestStorePath:
    def test_alloc_and_clean_free(self):
        checker, log, _, _ = make_checker()
        assert checker.commit_store(0, 0x100, 42)
        checker.store_performed(0, 0x100, 42)
        assert not log.reports
        assert checker.vc_occupancy == 0

    def test_value_mismatch_at_free(self):
        """The deallocation check of Proof 1: the value written to the
        cache must equal the VC value (catches WB corruption)."""
        checker, log, _, _ = make_checker()
        checker.commit_store(0, 0x100, 42)
        checker.store_performed(0, 0x100, 99)  # corrupted en route
        assert len(log.reports) == 1
        assert log.reports[0].kind == "store-value-mismatch"

    def test_perform_without_entry(self):
        """A store performing at an address with no VC entry (wrong-
        address corruption) is itself a violation."""
        checker, log, _, _ = make_checker()
        checker.store_performed(0, 0x500, 1)
        assert log.reports[0].kind == "store-no-vc-entry"

    def test_multiple_stores_same_word_check_last(self):
        checker, log, _, _ = make_checker()
        checker.commit_store(0, 0x100, 1)
        checker.commit_store(1, 0x100, 2)
        checker.store_performed(0, 0x100, 1)  # count 2 -> 1, no check yet
        assert not log.reports
        checker.store_performed(1, 0x100, 2)  # count 0: compare with latest
        assert not log.reports

    def test_vc_full_backpressure(self):
        checker, _, _, _ = make_checker(vc_entries=2)
        assert checker.commit_store(0, 0x100, 1)
        assert checker.commit_store(1, 0x200, 2)
        assert not checker.commit_store(2, 0x300, 3)  # full of live stores

    def test_lost_store_scan(self):
        checker, log, _, sched = make_checker()
        checker.commit_store(0, 0x100, 1)  # never performs
        interval = SystemConfig().dvmc.membar_injection_interval
        sched.after(3 * interval, lambda: None)
        sched.run()
        assert any(r.kind == "store-lost" for r in log.reports)


class TestLoadReplay:
    def test_vc_hit_match(self):
        checker, log, _, _ = make_checker()
        checker.commit_store(0, 0x100, 5)
        out = {}
        checker.replay_load(0x100, 5, lambda m, v: out.update(m=m, v=v))
        assert out == {"m": False, "v": 5}

    def test_vc_hit_mismatch(self):
        checker, _, _, _ = make_checker()
        checker.commit_store(0, 0x100, 5)
        out = {}
        checker.replay_load(0x100, 7, lambda m, v: out.update(m=m, v=v))
        assert out["m"] is True

    def test_vc_miss_reads_cache(self):
        checker, _, controller, _ = make_checker()
        controller.memory[0x100] = 33
        out = {}
        checker.replay_load(0x100, 33, lambda m, v: out.update(m=m, v=v))
        assert controller.replay_reads == 1
        assert out == {"m": False, "v": 33}

    def test_report_mismatch_logs_violation(self):
        checker, log, _, _ = make_checker()
        checker.report_mismatch(0x100, 1, 2)
        assert log.reports[0].kind == "load-replay-mismatch"


class TestRmoOptimisation:
    def test_load_values_satisfy_replay_without_cache(self):
        """Paper 4.1: under RMO, replay uses VC-resident load values,
        avoiding L1 pressure entirely."""
        checker, log, controller, _ = make_checker(rmo=True)
        checker.note_load_executed(0x100, 11, seq=5)
        out = {}
        checker.replay_load(0x100, 11, lambda m, v: out.update(m=m), seq=5)
        assert controller.replay_reads == 0
        assert out["m"] is False

    def test_own_entry_catches_corruption(self):
        checker, _, _, _ = make_checker(rmo=True)
        checker.note_load_executed(0x100, 11, seq=5)  # cache said 11
        out = {}
        # The register file got a corrupted 0x1B: mismatch.
        checker.replay_load(0x100, 0x1B, lambda m, v: out.update(m=m), seq=5)
        assert out["m"] is True

    def test_foreign_load_entry_skipped(self):
        """A younger load's deposit must not fail an older load's replay
        (remote stores may legally change the word between them)."""
        checker, log, _, _ = make_checker(rmo=True)
        checker.note_load_executed(0x100, 1, seq=9)  # younger load saw 1
        out = {}
        checker.replay_load(0x100, 0, lambda m, v: out.update(m=m), seq=5)
        assert out["m"] is False
        assert not log.reports

    def test_local_store_updates_entry(self):
        checker, _, _, _ = make_checker(rmo=True)
        checker.note_load_executed(0x100, 1, seq=0)
        checker.commit_store(1, 0x100, 2)
        checker.store_performed(1, 0x100, 2)
        out = {}
        checker.replay_load(0x100, 2, lambda m, v: out.update(m=m), seq=2)
        assert out["m"] is False

    def test_non_rmo_ignores_load_notes(self):
        checker, _, controller, _ = make_checker(rmo=False)
        checker.note_load_executed(0x100, 11, seq=5)
        controller.memory[0x100] = 11
        out = {}
        checker.replay_load(0x100, 11, lambda m, v: out.update(m=m), seq=5)
        assert controller.replay_reads == 1  # had to go to the cache

    def test_flush_clean_entries_on_model_switch(self):
        checker, _, controller, _ = make_checker(rmo=True)
        checker.note_load_executed(0x100, 11, seq=5)
        checker.rmo_mode = False
        checker.flush_clean_entries()
        assert checker.vc_occupancy == 0

    def test_residual_entries_not_used_outside_rmo(self):
        """A count==0 entry left over from an RMO section must not
        satisfy a TSO-mode replay (it may be stale)."""
        checker, log, controller, _ = make_checker(rmo=True)
        checker.note_load_executed(0x100, 11, seq=5)
        checker.rmo_mode = False
        controller.memory[0x100] = 12
        out = {}
        checker.replay_load(0x100, 12, lambda m, v: out.update(m=m), seq=8)
        assert controller.replay_reads == 1
        assert out["m"] is False

    def test_atomic_supersedes_load_entry(self):
        checker, _, _, _ = make_checker(rmo=True)
        checker.note_load_executed(0x100, 1, seq=0)
        checker.note_atomic(0x100, 7)
        out = {}
        checker.replay_load(0x100, 7, lambda m, v: out.update(m=m), seq=3)
        assert out["m"] is False

    def test_clean_eviction_under_pressure(self):
        checker, _, _, _ = make_checker(rmo=True, vc_entries=2)
        checker.note_load_executed(0x100, 1, seq=0)
        checker.note_load_executed(0x200, 2, seq=1)
        checker.note_load_executed(0x300, 3, seq=2)  # evicts LRU
        assert checker.vc_occupancy == 2
