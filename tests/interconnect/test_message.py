"""Message records: packed int slots and the recycling freelist."""

from repro.interconnect import message as message_pool
from repro.interconnect.message import Message, acquire, release


class TestMessage:
    def test_unique_uids(self):
        a = Message(src=0, dst=1, kind="x")
        b = Message(src=0, dst=1, kind="x")
        assert a.uid != b.uid

    def test_duplicate_copies_payload(self):
        original = Message(src=0, dst=1, kind="x", data=[1, 2], meta={"k": 3})
        dup = original.copy_for_duplicate()
        assert dup.uid != original.uid
        assert dup.data == original.data
        dup.data[0] = 99
        assert original.data[0] == 1  # deep enough copy
        dup.meta["k"] = 4
        assert original.meta["k"] == 3

    def test_duplicate_copies_int_slots(self):
        original = Message(src=0, dst=1, kind="x")
        original.req = 3
        original.acks = 2
        original.flags = 3
        original.etype = 1
        original.t_begin = 10
        original.t_end = 20
        original.h_begin = 0xAB
        original.h_end = 0xCD
        original.order = 7
        dup = original.copy_for_duplicate()
        for slot in (
            "req",
            "acks",
            "flags",
            "etype",
            "t_begin",
            "t_end",
            "h_begin",
            "h_end",
            "order",
        ):
            assert getattr(dup, slot) == getattr(original, slot)

    def test_duplicate_of_dataless_message(self):
        original = Message(src=0, dst=1, kind="x")
        assert original.copy_for_duplicate().data is None

    def test_defaults(self):
        m = Message(src=2, dst=3, kind="y")
        assert m.addr == 0
        assert m.size_bytes == 8
        assert m.req == m.acks == -1
        assert m.flags == 0
        assert m.etype == m.t_begin == m.t_end == -1
        assert m.h_begin == m.h_end == m.order == -1
        assert m.meta == {}


class TestFreelist:
    def test_release_then_acquire_reuses_record(self):
        m = acquire(0, 1, "x", addr=0x40, data=[1, 2], req=5)
        release(m)
        again = acquire(2, 3, "y")
        assert again is m  # recycled, not reallocated
        # Full slot reset on reuse.
        assert again.src == 2 and again.dst == 3 and again.kind == "y"
        assert again.addr == 0 and again.data is None
        assert again.req == -1 and again.acks == -1 and again.flags == 0
        assert again.etype == again.t_begin == again.t_end == -1
        assert again.h_begin == again.h_end == again.order == -1
        assert again.uid != m.uid or again.uid >= 0  # fresh uid drawn

    def test_release_drops_data_reference(self):
        payload = [1, 2, 3]
        m = acquire(0, 1, "x", data=payload)
        release(m)
        assert m.data is None
        assert payload == [1, 2, 3]  # the list itself is untouched

    def test_double_release_is_guarded(self):
        m = acquire(0, 1, "x")
        release(m)
        depth = message_pool.pool_stats()["depth"]
        release(m)  # must not enqueue the record twice
        assert message_pool.pool_stats()["depth"] == depth

    def test_no_recycle_pins_record(self):
        m = acquire(0, 1, "x")
        m.no_recycle = True
        depth = message_pool.pool_stats()["depth"]
        release(m)
        assert message_pool.pool_stats()["depth"] == depth
        assert m.data is None or True  # record left intact
        assert m.kind == "x"

    def test_meta_access_pins_record(self):
        m = acquire(0, 1, "x")
        m.meta["k"] = 1  # hands out an aliasable dict
        assert m.no_recycle
        depth = message_pool.pool_stats()["depth"]
        release(m)
        assert message_pool.pool_stats()["depth"] == depth

    def test_external_meta_pins_record(self):
        m = Message(src=0, dst=1, kind="x", meta={"k": 1})
        assert m.no_recycle

    def test_pool_stats_counts_allocs_and_reuse(self):
        before = message_pool.pool_stats()
        m = acquire(0, 1, "x")
        release(m)
        acquire(0, 1, "y")
        after = message_pool.pool_stats()
        assert after["reused"] >= before["reused"] + 1
