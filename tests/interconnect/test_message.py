"""Message objects."""

from repro.interconnect.message import Message


class TestMessage:
    def test_unique_uids(self):
        a = Message(src=0, dst=1, kind="x")
        b = Message(src=0, dst=1, kind="x")
        assert a.uid != b.uid

    def test_duplicate_copies_payload(self):
        original = Message(src=0, dst=1, kind="x", data=[1, 2], meta={"k": 3})
        dup = original.copy_for_duplicate()
        assert dup.uid != original.uid
        assert dup.data == original.data
        dup.data[0] = 99
        assert original.data[0] == 1  # deep enough copy
        dup.meta["k"] = 4
        assert original.meta["k"] == 3

    def test_duplicate_of_dataless_message(self):
        original = Message(src=0, dst=1, kind="x")
        assert original.copy_for_duplicate().data is None

    def test_defaults(self):
        m = Message(src=2, dst=3, kind="y")
        assert m.addr == 0
        assert m.size_bytes == 8
        assert m.meta == {}
