"""Express vs hop-by-hop message plane: same machine, fewer events.

The express torus (``repro.interconnect.torus``) reserves a message's
whole link path at ``send()`` time and posts one final-delivery event;
``REPRO_HOPS=1`` (or ``express=False``) replays the same reserved
timetable with one relay event per intermediate node.  The two regimes
must simulate the *identical machine*: same delivery cycles, same
per-link byte counters, same link utilisation, same violations, same
final memory image, and the same value for every stats counter.  Only
the raw event count may differ — eliding a relay hop removes a
simulator event, never an architectural one — exactly the contract
``REPRO_POLL`` established for the wake-on-change kernel.
"""

import dataclasses
import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.events import Scheduler
from repro.common.stats import StatsRegistry
from repro.config import NetworkConfig, ProtocolKind, SystemConfig
from repro.interconnect.base import FaultAction
from repro.interconnect.message import Message
from repro.interconnect.torus import TorusNetwork
from repro.parallel import RunSpec, execute_run_spec
from repro.workloads import WORKLOAD_NAMES


def run_traffic(num_nodes, ops, express, with_hook=False):
    """Drive one torus with a fixed traffic program; return observables.

    ``ops`` is a list of (time, src, dst, size) sends, injected from
    scheduled events so timing matches real controller usage.  The
    returned observables are everything architectural: delivery
    (cycle, node, tag) triples in handler order, the per-link byte
    counters, and the link-utilisation map.
    """
    sched = Scheduler()
    stats = StatsRegistry()
    net = TorusNetwork(
        "t", sched, stats, num_nodes, NetworkConfig(), express=express
    )
    deliveries = []
    for n in range(num_nodes):
        net.register(n, lambda m, n=n: deliveries.append((sched.now, n, m.addr)))
    if with_hook:
        counter = itertools.count()

        def hook(m):
            i = next(counter)
            if i % 7 == 3:
                return (FaultAction.DROP, None)
            if i % 7 == 5:
                return (FaultAction.DUPLICATE, None)
            if i % 11 == 10:
                return (FaultAction.MISROUTE, (m.dst + 1) % num_nodes)
            return (FaultAction.DELIVER, None)

        net.set_fault_hook(hook)

    def inject(tag, src, dst, size):
        net.send(Message(src=src, dst=dst, kind="x", addr=tag, size_bytes=size))

    for i, (t, src, dst, size) in enumerate(ops):
        sched.post_at(t, inject, (i, src, dst, size))
    sched.run()
    links = dict(
        sorted(stats.counters_with_prefix("net.t.link.").items())
    )
    util = net.link_utilization(max(sched.now, 1))
    return deliveries, links, util, net


ops_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40),  # bursty: narrow time range
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=7),  # includes self-sends
        st.sampled_from([8, 16, 72]),
    ),
    min_size=1,
    max_size=40,
)


class TestTorusExpressIdentity:
    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(ops=ops_strategy)
    def test_random_traffic_identical(self, ops):
        express = run_traffic(8, ops, express=True)
        hops = run_traffic(8, ops, express=False)
        assert express[0] == hops[0]  # delivery (cycle, node, tag) triples
        assert express[1] == hops[1]  # per-link byte counters
        assert express[2] == hops[2]  # link utilisation
        # The point of the change: express elides the relay events.
        assert hops[3].hop_events_elided == 0
        assert express[3].express_sends == hops[3].fallback_sends

    @settings(
        max_examples=20,
        deadline=None,
        derandomize=True,
    )
    @given(ops=ops_strategy)
    def test_random_traffic_identical_with_armed_fault_hook(self, ops):
        """Faults (drop / duplicate / misroute) fire at send time in
        both regimes, so injected-fault runs stay identical too."""
        express = run_traffic(8, ops, express=True, with_hook=True)
        hops = run_traffic(8, ops, express=False, with_hook=True)
        assert express[0] == hops[0]
        assert express[1] == hops[1]
        assert express[2] == hops[2]

    def test_contended_link_reservation_order(self):
        """Three same-cycle senders share link 0-1: per-link FIFO
        follows global send order, in both regimes."""
        ops = [(5, 0, 1, 72), (5, 0, 1, 72), (5, 0, 1, 72)]
        express = run_traffic(4, ops, express=True)
        hops = run_traffic(4, ops, express=False)
        assert express[0] == hops[0]
        times = [t for t, _, _ in express[0]]
        tags = [tag for _, _, tag in express[0]]
        assert tags == [0, 1, 2]  # send order
        assert times[0] < times[1] < times[2]  # serialised, not parallel

    def test_self_send_bypasses_links(self):
        for express in (True, False):
            deliveries, links, _, net = run_traffic(
                4, [(0, 2, 2, 72)], express=express
            )
            assert [n for _, n, _ in deliveries] == [2]
            assert links == {}

    def test_express_env_gate(self, monkeypatch):
        sched, stats = Scheduler(), StatsRegistry()
        monkeypatch.setenv("REPRO_HOPS", "1")
        net = TorusNetwork("t", sched, stats, 4, NetworkConfig())
        assert not net.express
        monkeypatch.delenv("REPRO_HOPS", raising=False)
        net = TorusNetwork("t", sched, stats, 4, NetworkConfig())
        assert net.express


def stripped(metrics):
    """RunMetrics minus the fields express mode is allowed to change."""
    return dataclasses.replace(metrics, events_processed=0, obs=None)


def run_mode(spec, monkeypatch, hops: bool, poll: bool):
    if hops:
        monkeypatch.setenv("REPRO_HOPS", "1")
    else:
        monkeypatch.delenv("REPRO_HOPS", raising=False)
    if poll:
        monkeypatch.setenv("REPRO_POLL", "1")
    else:
        monkeypatch.delenv("REPRO_POLL", raising=False)
    return execute_run_spec(spec)


class TestExpressSystemIdentity:
    """Full-system matrix: every workload x protocol x kernel mode."""

    @pytest.mark.parametrize("poll", [False, True], ids=["wake", "poll"])
    @pytest.mark.parametrize("protocol", list(ProtocolKind))
    @pytest.mark.parametrize("workload", sorted(WORKLOAD_NAMES))
    def test_runmetrics_identical(self, workload, protocol, poll, monkeypatch):
        spec = RunSpec(
            SystemConfig.protected(protocol=protocol, num_nodes=4).with_seed(
                13
            ),
            workload,
            40,
        )
        express = run_mode(spec, monkeypatch, hops=False, poll=poll)
        hops = run_mode(spec, monkeypatch, hops=True, poll=poll)
        assert stripped(express) == stripped(hops)
        assert express.counters == hops.counters
        assert express.completed and hops.completed
        # Relay elision only ever removes simulator events.
        assert express.events_processed <= hops.events_processed
