"""2D torus: topology, routing, bandwidth accounting, fault hooks."""

from hypothesis import given, settings, strategies as st

from repro.common.events import Scheduler
from repro.common.stats import StatsRegistry
from repro.config import NetworkConfig
from repro.interconnect.base import FaultAction
from repro.interconnect.message import Message
from repro.interconnect.torus import TorusNetwork, grid_shape


def make_torus(num_nodes=8, **net_kwargs):
    sched = Scheduler()
    stats = StatsRegistry()
    net = TorusNetwork("t", sched, stats, num_nodes, NetworkConfig(**net_kwargs))
    return sched, stats, net


class TestGridShape:
    def test_eight_nodes_is_2x4(self):
        assert grid_shape(8) == (2, 4)

    def test_square_counts(self):
        assert grid_shape(4) == (2, 2)
        assert grid_shape(16) == (4, 4)

    def test_primes_degenerate_to_ring(self):
        assert grid_shape(7) == (1, 7)

    def test_single_node(self):
        assert grid_shape(1) == (1, 1)


class TestRouting:
    @given(
        st.integers(min_value=2, max_value=16),
        st.data(),
    )
    @settings(max_examples=60)
    def test_route_reaches_destination(self, num_nodes, data):
        _, _, net = make_torus(num_nodes)
        src = data.draw(st.integers(min_value=0, max_value=num_nodes - 1))
        dst = data.draw(st.integers(min_value=0, max_value=num_nodes - 1))
        path = net.route(src, dst)
        assert path[0] == src
        assert path[-1] == dst
        # Dimension-order bound: at most half of each dimension.
        assert len(path) - 1 <= net.cols // 2 + net.rows // 2 + 2

    def test_route_to_self_is_trivial(self):
        _, _, net = make_torus(8)
        assert net.route(3, 3) == [3]

    def test_wraparound_is_shorter(self):
        _, _, net = make_torus(8)  # 2x4: nodes 0..3 top row
        # 0 -> 3 should wrap (1 hop) rather than go 0-1-2-3.
        assert len(net.route(0, 3)) == 2

    def test_prime_node_count_degenerates_to_ring(self):
        _, _, net = make_torus(7)  # grid_shape(7) == (1, 7)
        assert (net.rows, net.cols) == (1, 7)
        # 0 -> 5: wrapping backwards (2 hops) beats 5 forward hops.
        assert net.route(0, 5) == [0, 6, 5]
        # 0 -> 3: forward is shortest.
        assert net.route(0, 3) == [0, 1, 2, 3]

    def test_route_serves_fresh_copies_from_one_memo(self):
        sched, _, net = make_torus(8)
        first = net.route(0, 5)
        second = net.route(0, 5)
        assert first == second
        assert first is not second  # caller-safe copy, shared memo
        for n in range(8):
            net.register(n, lambda m: None)
        net.send(Message(src=0, dst=5, kind="x"))
        sched.run()
        # send() walked the same memoised path route() built.
        assert net.obs_snapshot()["path_memo_entries"] == 1


class TestDelivery:
    def test_message_arrives_once(self):
        sched, _, net = make_torus(8)
        got = []
        for n in range(8):
            net.register(n, lambda m, n=n: got.append((n, m.uid)))
        msg = Message(src=0, dst=5, kind="x", addr=0, size_bytes=8)
        net.send(msg)
        sched.run()
        assert got == [(5, msg.uid)]

    def test_local_delivery(self):
        sched, _, net = make_torus(8)
        got = []
        for n in range(8):
            net.register(n, lambda m, n=n: got.append(n))
        net.send(Message(src=2, dst=2, kind="x"))
        sched.run()
        assert got == [2]

    def test_latency_scales_with_hops(self):
        sched, _, net = make_torus(8)
        times = {}
        for n in range(8):
            net.register(n, lambda m, n=n: times.setdefault(n, sched.now))
        net.send(Message(src=0, dst=1, kind="a", size_bytes=8))
        net.send(Message(src=0, dst=2, kind="b", size_bytes=8))
        sched.run()
        assert times[2] > times[1]

    def test_serialization_delays_back_to_back(self):
        sched, _, net = make_torus(8, link_bandwidth_gbps=1.0, cpu_freq_ghz=2.0)
        arrivals = []
        for n in range(8):
            net.register(n, lambda m: arrivals.append(sched.now))
        for _ in range(3):
            net.send(Message(src=0, dst=1, kind="x", size_bytes=72))
        sched.run()
        # 72B at 0.5 B/cycle = 144 cycles serialisation per message.
        assert arrivals[1] - arrivals[0] >= 144
        assert arrivals[2] - arrivals[1] >= 144


class TestBandwidthAccounting:
    def test_bytes_counted_per_link(self):
        sched, stats, net = make_torus(8)
        for n in range(8):
            net.register(n, lambda m: None)
        net.send(Message(src=0, dst=1, kind="x", size_bytes=72))
        sched.run()
        assert stats.counter("net.t.link.0-1") == 72
        assert net.total_bytes() == 72
        assert net.max_link_bytes() == 72

    def test_multihop_counts_every_link(self):
        sched, stats, net = make_torus(8)
        for n in range(8):
            net.register(n, lambda m: None)
        net.send(Message(src=0, dst=2, kind="x", size_bytes=10))
        sched.run()
        assert net.total_bytes() == 20  # two hops

    def test_link_utilization(self):
        sched, _, net = make_torus(8)
        for n in range(8):
            net.register(n, lambda m: None)
        net.send(Message(src=0, dst=1, kind="x", size_bytes=100))
        sched.run()
        util = net.link_utilization(elapsed_cycles=100)
        assert util["0-1"] == 1.0


class TestFaultHooks:
    def _wired(self):
        sched, stats, net = make_torus(4)
        got = []
        for n in range(4):
            net.register(n, lambda m, n=n: got.append((n, m)))
        return sched, stats, net, got

    def test_drop(self):
        sched, stats, net, got = self._wired()
        net.set_fault_hook(lambda m: (FaultAction.DROP, None))
        net.send(Message(src=0, dst=1, kind="x"))
        sched.run()
        assert got == []
        assert stats.counter("net.t.faults.dropped") == 1

    def test_duplicate(self):
        sched, _, net, got = self._wired()
        net.set_fault_hook(lambda m: (FaultAction.DUPLICATE, None))
        net.send(Message(src=0, dst=1, kind="x"))
        net.set_fault_hook(None)
        sched.run()
        assert [n for n, _ in got] == [1, 1]
        assert got[0][1].uid != got[1][1].uid

    def test_misroute(self):
        sched, _, net, got = self._wired()
        net.set_fault_hook(lambda m: (FaultAction.MISROUTE, 3))
        net.send(Message(src=0, dst=1, kind="x"))
        sched.run()
        assert [n for n, _ in got] == [3]

    def test_hook_can_mutate_payload(self):
        sched, _, net, got = self._wired()

        def corrupt(m):
            m.data[0] ^= 0xFF
            return (FaultAction.DELIVER, None)

        net.set_fault_hook(corrupt)
        net.send(Message(src=0, dst=1, kind="x", data=[1, 2, 3]))
        sched.run()
        assert got[0][1].data[0] == 1 ^ 0xFF
