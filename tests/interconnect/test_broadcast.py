"""Ordered broadcast tree (snooping address network)."""

from repro.common.events import Scheduler
from repro.common.stats import StatsRegistry
from repro.config import NetworkConfig
from repro.interconnect.broadcast import BroadcastTreeNetwork
from repro.interconnect.message import Message


def make_net(num_nodes=4):
    sched = Scheduler()
    stats = StatsRegistry()
    net = BroadcastTreeNetwork("a", sched, stats, num_nodes, NetworkConfig())
    return sched, stats, net


class TestBroadcastDelivery:
    def test_every_node_receives_including_sender(self):
        sched, _, net = make_net(4)
        got = {n: [] for n in range(4)}
        for n in range(4):
            net.register(n, lambda m, n=n: got[n].append(m.addr))
        net.send(Message(src=1, dst=-1, kind="req", addr=0x40))
        sched.run()
        assert all(got[n] == [0x40] for n in range(4))

    def test_total_order_is_identical_everywhere(self):
        sched, _, net = make_net(4)
        got = {n: [] for n in range(4)}
        for n in range(4):
            net.register(n, lambda m, n=n: got[n].append(m.order))
        # Two senders race; the root serialises them.
        net.send(Message(src=0, dst=-1, kind="req", addr=0x40))
        net.send(Message(src=3, dst=-1, kind="req", addr=0x80))
        sched.run()
        orders = [tuple(got[n]) for n in range(4)]
        assert len(set(orders)) == 1  # same order at every node
        assert orders[0] == (0, 1)

    def test_deliveries_are_simultaneous_across_nodes(self):
        sched, _, net = make_net(4)
        times = {}
        for n in range(4):
            net.register(n, lambda m, n=n: times.setdefault(n, sched.now))
        net.send(Message(src=0, dst=-1, kind="req", addr=0))
        sched.run()
        assert len(set(times.values())) == 1

    def test_root_serialisation_spaces_broadcasts(self):
        sched, _, net = make_net(2)
        arrivals = []
        net.register(0, lambda m: arrivals.append(sched.now))
        net.register(1, lambda m: None)
        for _ in range(3):
            net.send(Message(src=0, dst=-1, kind="req", size_bytes=8))
        sched.run()
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        ser = NetworkConfig().serialization_cycles(8)
        assert all(g >= ser for g in gaps)

    def test_bandwidth_counted_up_and_down(self):
        sched, stats, net = make_net(4)
        for n in range(4):
            net.register(n, lambda m: None)
        net.send(Message(src=2, dst=-1, kind="req", size_bytes=8))
        sched.run()
        assert stats.counter("net.a.link.2-root") == 8
        for n in range(4):
            assert stats.counter(f"net.a.link.root-{n}") == 8

    def test_order_count_increments(self):
        sched, _, net = make_net(2)
        net.register(0, lambda m: None)
        net.register(1, lambda m: None)
        assert net.order_count == 0
        net.send(Message(src=0, dst=-1, kind="req"))
        sched.run()
        assert net.order_count == 1
