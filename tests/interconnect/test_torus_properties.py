"""Property-based delivery guarantees for the torus."""

from hypothesis import given, settings, strategies as st

from repro.common.events import Scheduler
from repro.common.stats import StatsRegistry
from repro.config import NetworkConfig
from repro.interconnect.message import Message
from repro.interconnect.torus import TorusNetwork


@given(
    st.integers(min_value=2, max_value=12),
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=143), st.integers(min_value=0, max_value=143)),
        min_size=1,
        max_size=20,
    ),
)
@settings(max_examples=60, deadline=None)
def test_every_message_delivered_exactly_once(num_nodes, raw_pairs):
    sched = Scheduler()
    net = TorusNetwork("p", sched, StatsRegistry(), num_nodes, NetworkConfig())
    received = []
    for n in range(num_nodes):
        net.register(n, lambda m, n=n: received.append((n, m.uid)))
    sent = []
    for raw_src, raw_dst in raw_pairs:
        msg = Message(
            src=raw_src % num_nodes,
            dst=raw_dst % num_nodes,
            kind="x",
            size_bytes=8,
        )
        sent.append(msg)
        net.send(msg)
    sched.run()
    assert sorted(uid for _, uid in received) == sorted(m.uid for m in sent)
    for msg in sent:
        deliveries = [n for n, uid in received if uid == msg.uid]
        assert deliveries == [msg.dst]


@given(st.integers(min_value=2, max_value=12))
@settings(max_examples=30, deadline=None)
def test_per_link_fifo(num_nodes):
    """Messages between the same pair arrive in send order."""
    sched = Scheduler()
    net = TorusNetwork("p", sched, StatsRegistry(), num_nodes, NetworkConfig())
    order = []
    for n in range(num_nodes):
        net.register(n, lambda m: order.append(m.meta["i"]))
    for i in range(6):
        net.send(Message(src=0, dst=num_nodes - 1, kind="x", meta={"i": i}))
    sched.run()
    assert order == sorted(order)
