"""Batched delivery: same-(node, cycle) arrivals coalesce into one event."""

import pytest

from repro.common.errors import ConfigError
from repro.common.events import Scheduler
from repro.common.stats import StatsRegistry
from repro.config import NetworkConfig
from repro.interconnect.base import Network
from repro.interconnect.message import Message
from repro.interconnect.torus import TorusNetwork


class _DirectNet(Network):
    """Minimal concrete Network: send = deliver next cycle."""

    def send(self, message):
        self.deliver_at(self.scheduler.now + 1, message)


def make_net():
    sched = Scheduler()
    stats = StatsRegistry()
    net = _DirectNet("n", sched, stats)
    return sched, stats, net


def msg(dst, addr=0):
    return Message(src=0, dst=dst, kind="x", addr=addr)


class TestDeliverAt:
    def test_same_node_same_cycle_coalesce(self):
        sched, stats, net = make_net()
        got = []
        net.register(1, got.append)
        a, b, c = msg(1, 0x10), msg(1, 0x20), msg(1, 0x30)
        net.deliver_at(5, a)
        net.deliver_at(5, b)
        net.deliver_at(5, c)
        sched.run()
        assert got == [a, b, c]  # arrival order preserved
        assert net.deliveries_coalesced == 2
        assert stats.as_dict()["net.n.coalesced_deliveries"] == 2

    def test_different_cycles_do_not_coalesce(self):
        sched, _, net = make_net()
        seen = []
        net.register(1, lambda m: seen.append(sched.now))
        net.deliver_at(5, msg(1))
        net.deliver_at(6, msg(1))
        sched.run()
        assert seen == [5, 6]
        assert net.deliveries_coalesced == 0

    def test_different_nodes_do_not_coalesce(self):
        sched, _, net = make_net()
        got = {1: [], 2: []}
        net.register(1, got[1].append)
        net.register(2, got[2].append)
        net.deliver_at(5, msg(1))
        net.deliver_at(5, msg(2))
        sched.run()
        assert len(got[1]) == 1 and len(got[2]) == 1
        assert net.deliveries_coalesced == 0

    def test_key_is_released_after_delivery(self):
        """A later send to the same (node, cycle-number) in a fresh
        cycle must not append to an already-delivered batch."""
        sched, _, net = make_net()
        seen = []
        net.register(1, lambda m: seen.append((sched.now, m.addr)))
        net.deliver_at(3, msg(1, 0xA))
        sched.run()
        net.deliver_at(7, msg(1, 0xB))
        sched.run()
        assert seen == [(3, 0xA), (7, 0xB)]


class TestBatchHandlers:
    def test_batch_handler_gets_multi_message_batches(self):
        sched, _, net = make_net()
        singles, batches = [], []
        net.register(1, singles.append)
        net.register_batch(1, lambda batch: batches.append(list(batch)))
        net.deliver_at(4, msg(1, 0x1))
        net.deliver_at(4, msg(1, 0x2))
        sched.run()
        assert singles == []
        assert len(batches) == 1 and [m.addr for m in batches[0]] == [1, 2]

    def test_lone_arrival_bypasses_batch_handler(self):
        sched, _, net = make_net()
        singles, batches = [], []
        net.register(1, singles.append)
        net.register_batch(1, batches.append)
        net.deliver_at(4, msg(1))
        sched.run()
        assert len(singles) == 1 and batches == []

    def test_batch_falls_back_to_plain_handler(self):
        sched, _, net = make_net()
        got = []
        net.register(1, got.append)
        net.deliver_at(4, msg(1, 0x1))
        net.deliver_at(4, msg(1, 0x2))
        sched.run()
        assert [m.addr for m in got] == [1, 2]

    def test_duplicate_batch_registration_rejected(self):
        _, _, net = make_net()
        net.register_batch(1, lambda batch: None)
        with pytest.raises(ConfigError):
            net.register_batch(1, lambda batch: None)


class TestTorusBatching:
    def test_final_hop_coalesces(self):
        sched = Scheduler()
        stats = StatsRegistry()
        net = TorusNetwork("t", sched, stats, 4, NetworkConfig())
        got = []
        net.register(3, got.append)
        # Two messages from different sources landing on node 3; if the
        # torus schedules them onto the same arrival cycle they must
        # still all arrive, in order, regardless of coalescing.
        for src in (0, 1, 2):
            net.send(Message(src=src, dst=3, kind="x", addr=src))
        sched.run()
        assert sorted(m.addr for m in got) == [0, 1, 2]
